// Command adarnet-serve exposes the batched inference engine over HTTP: a
// stdlib net/http server with JSON in/out, so many clients can request
// predictions concurrently and share forward-pass batches.
//
// Endpoints:
//
//	POST /predict  {"case":"cylinder","re":1e5,"h":16,"w":64}
//	               → refinement map, composite cells, timing
//	GET  /healthz  readiness: per-replica health JSON; 503 until at least
//	               one replica is routable
//	GET  /stats    engine counters (requests, batches, occupancy, latency
//	               means and p50/p95/p99 tails, contained panics, cache
//	               hit/miss/evicted/bytes when -cache-bytes is set)
//	GET  /metrics  Prometheus text exposition: engine stage histograms,
//	               HTTP latency, tensor-pool gauges, process counters
//
// With -jobs-dir set, the async end-to-end solve API is served too (see
// DESIGN.md §14 and the README's "Long-running solves"):
//
//	POST   /jobs              accept a full LR-solve → infer → correct job,
//	                          journaled before the 202 so it survives a crash
//	GET    /jobs              list all known jobs
//	GET    /jobs/{id}         state, stage, residual history (?tail=N)
//	GET    /jobs/{id}/events  live progress stream (server-sent events)
//	DELETE /jobs/{id}         cancel (pending: immediate; running: via ctx)
//
// Every request carries an ID (generated, or adopted from a well-formed
// X-Request-Id header), echoed in the response header, stamped on each
// structured log line (-log-format text|json), and retained in an
// in-process last-N-request trace ring. With -debug-addr set, a second
// listener exposes /debug/pprof, /debug/vars, /debug/requests (the ring),
// and /metrics — kept off the serving port so profiling can never be
// reached from the traffic-facing address by accident.
//
// The boundary is hardened: request bodies are size-capped and rejected on
// unknown fields, grid dimensions are bounded (h, w ≤ -max-dim, tiled by the
// model's patch size) so a hostile request cannot trigger multi-GB
// allocations, every request carries a server-side deadline, and a panic in
// a forward pass surfaces as HTTP 500 on that request alone — the engine
// retries its batch-mates and the listener keeps serving (see
// internal/serve and DESIGN.md §9–§10).
//
// Usage:
//
//	adarnet-serve -model model.gob -addr :8080 -max-batch 8 -workers 4 \
//	              -log-format json -debug-addr localhost:6060
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"time"

	"adarnet/internal/core"
	"adarnet/internal/jobs"
	"adarnet/internal/obs"
	"adarnet/internal/serve"
	"adarnet/internal/solver"
	"adarnet/internal/tensor"
	"adarnet/internal/tensor/cpu"
)

func main() {
	model := flag.String("model", "", "checkpoint path (required)")
	addr := flag.String("addr", ":8080", "listen address")
	patch := flag.Int("patch", 4, "patch size the checkpoint was trained with")
	bins := flag.Int("bins", 4, "number of target resolutions")
	maxBatch := flag.Int("max-batch", 8, "batch flush size")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "partial-batch flush deadline")
	workers := flag.Int("workers", 2, "forward-pass workers")
	queueDepth := flag.Int("queue-depth", 64, "submission queue bound")
	solverIter := flag.Int("solver-max-iter", 12000, "LR-solve iteration cap per request")
	precision := flag.String("precision", "float64", "inference numeric path: float64 (bit-exact default) | float32 (fused fast path)")
	gemmKernel := flag.String("gemm-kernel", "auto", "float32 GEMM micro-kernel: auto (best for this CPU) | avx2 | neon | generic (scalar fallback)")
	cacheBytes := flag.Int64("cache-bytes", 0, "content-addressed prediction-cache byte budget per replica; 0 disables the cache")
	cacheNegTTL := flag.Duration("cache-negative-ttl", 10*time.Second, "lifetime of negative (diverged-solve) cache entries; 0 disables negative caching")
	replicas := flag.Int("replicas", 1, "engine replicas behind the shard-aware router; 1 serves a single engine")
	hedge := flag.Duration("hedge", 0, "hedged-retry delay floor (cluster only): second attempt on another replica after max(this, observed p99); 0 disables")
	healthEvery := flag.Duration("health-interval", 250*time.Millisecond, "replica health-check cadence (cluster only)")
	ejectPanics := flag.Int("eject-panics", 3, "contained panics per health window before a replica is ejected and replaced (cluster only; 0 disables)")
	maxDim := flag.Int("max-dim", 256, "largest accepted grid dimension (h or w)")
	maxBody := flag.Int64("max-body", 1<<20, "request-body byte cap")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "HTTP header read deadline")
	readTimeout := flag.Duration("read-timeout", 10*time.Second, "HTTP request read deadline")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "HTTP response write deadline (keep > request-timeout)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle deadline")
	jobsDir := flag.String("jobs-dir", "", "journal directory for the async /jobs API; empty disables it")
	jobWorkers := flag.Int("job-workers", 1, "concurrent end-to-end solve jobs")
	jobQueue := flag.Int("job-queue-depth", 64, "accepted-but-unfinished job bound")
	jobCkptEvery := flag.Int("job-checkpoint-every", 2000, "solver iterations between mid-solve job checkpoints")
	logFormat := flag.String("log-format", "text", "structured log format: text | json")
	debugAddr := flag.String("debug-addr", "", "diagnostics listen address (pprof, /debug/requests, /debug/traces, /metrics); empty disables")
	traceRequests := flag.Int("trace-requests", 128, "completed requests retained in the in-process trace ring")
	traceSample := flag.Int("trace-sample", 16, "span tracing: keep 1 in N ordinary traces (every error and slow trace is always kept); 0 disables span tracing")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "span tracing: traces at least this long are always retained")
	traceRetain := flag.Int("trace-retain", 256, "finished traces retained for /debug/traces")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adarnet-serve:", err)
		os.Exit(2)
	}
	if *model == "" {
		fmt.Fprintln(os.Stderr, "adarnet-serve: -model is required (train one with adarnet-train)")
		os.Exit(2)
	}
	// Fail fast on a misconfiguration that otherwise only surfaces as
	// mysteriously aborted responses under load: the connection's write
	// deadline firing before the handler's request deadline.
	if err := validateTimeouts(*writeTimeout, *reqTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "adarnet-serve:", err)
		os.Exit(2)
	}
	// Kernel selection must precede engine construction: the float32 fast
	// path pre-packs frozen weights in the selected kernel's panel layout
	// at model-freeze time, and a PackedMat32 keeps its packing kernel for
	// life.
	kernel, err := tensor.SetGemm32Kernel(*gemmKernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adarnet-serve:", err)
		os.Exit(2)
	}

	cfg := core.DefaultConfig(*patch, *patch)
	cfg.Bins = *bins
	m := core.New(cfg)
	if err := m.Load(*model); err != nil {
		if errors.Is(err, core.ErrCheckpointCorrupt) {
			logger.Error("checkpoint failed integrity checks (re-train or restore a backup)", "err", err.Error())
		} else {
			logger.Error("checkpoint load failed", "err", err.Error())
		}
		os.Exit(1)
	}

	var prec serve.Precision
	switch *precision {
	case "float64":
		prec = serve.Float64
	case "float32":
		prec = serve.Float32
	default:
		fmt.Fprintf(os.Stderr, "adarnet-serve: unknown -precision %q (float64 | float32)\n", *precision)
		os.Exit(2)
	}

	obs.RegisterBuildInfo(obs.Default, *precision, kernel, cpu.Summary())

	// A nil tracer turns every span call into a no-op: -trace-sample 0 keeps
	// the serving path free of tracing work entirely.
	var tracer *obs.Tracer
	if *traceSample > 0 {
		tracer = obs.NewTracer(obs.TracerConfig{
			Slow:        *traceSlow,
			SampleEvery: *traceSample,
			Retain:      *traceRetain,
		})
		tracer.RegisterMetrics(obs.Default)
	}

	sopt := solver.DefaultOptions()
	sopt.MaxIter = *solverIter
	opts := []serve.Option{
		serve.WithPrecision(prec),
		serve.WithMaxBatch(*maxBatch),
		serve.WithMaxDelay(*maxDelay),
		serve.WithWorkers(*workers),
		serve.WithQueueDepth(*queueDepth),
		serve.WithSolverOptions(sopt),
		serve.WithCache(*cacheBytes),
		serve.WithNegativeTTL(*cacheNegTTL),
		serve.WithMetrics(obs.Default),
		serve.WithLogger(logger),
	}
	var engine serve.Predictor
	if *replicas > 1 {
		opts = append(opts,
			serve.WithReplicas(*replicas),
			serve.WithHedge(*hedge),
			serve.WithHealthInterval(*healthEvery),
			serve.WithEjectPanics(*ejectPanics),
		)
		engine, err = serve.NewCluster(m, opts...)
	} else {
		engine, err = serve.New(m, opts...)
	}
	if err != nil {
		logger.Error("engine start failed", "err", err.Error())
		os.Exit(1)
	}

	var jobSvc *jobs.Service
	if *jobsDir != "" {
		jobSvc, err = jobs.Open(jobs.Config{
			Dir:             *jobsDir,
			Model:           m,
			Workers:         *jobWorkers,
			QueueDepth:      *jobQueue,
			Solver:          sopt,
			CheckpointEvery: *jobCkptEvery,
			Logger:          logger,
			Metrics:         obs.Default,
			Tracer:          tracer,
		})
		if err != nil {
			logger.Error("job service start failed", "err", err.Error())
			os.Exit(1)
		}
		logger.Info("job service up", "dir", *jobsDir, "workers", *jobWorkers)
	}

	ring := obs.NewTraceRing(*traceRequests)
	mux := newMux(engine, serverConfig{
		maxDim:         *maxDim,
		patchTile:      *patch,
		maxBody:        *maxBody,
		requestTimeout: *reqTimeout,
		logger:         logger,
		ring:           ring,
		tracer:         tracer,
		jobs:           jobSvc,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelError),
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// ListenAndServe returns ErrServerClosed as soon as Shutdown begins, so
	// main must wait for this goroutine or the process exits before the
	// drain completes and the summary below is ever logged.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		if jobSvc != nil {
			// Graceful drain: running jobs get the same shutdown window to
			// finish; past it they are interrupted at a checkpoint and the
			// next start resumes them from the journal — nothing is lost.
			jobSvc.Close(shutdownCtx)
		}
		// Snapshot before Close: closing purges the cache, zeroing the
		// resident-bytes gauge the summary reports.
		st := engine.Stats()
		engine.Close()
		logger.Info("cache summary",
			"enabled", *cacheBytes > 0,
			"hits", st.CacheHits, "misses", st.CacheMisses,
			"negative_hits", st.CacheNegativeHits,
			"evicted", st.CacheEvicted, "bytes", st.CacheBytes)
	}()

	if *debugAddr != "" {
		// The debug listener gets no write timeout: a 30 s CPU profile or an
		// execution trace legitimately streams for that long.
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugMux(obs.Default, ring, tracer),
			ReadHeaderTimeout: 5 * time.Second,
			ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelError),
		}
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
		defer dbg.Close()
	}

	logger.Info("listening", "addr", *addr, "params", m.ParamCount(),
		"max_batch", *maxBatch, "workers", *workers, "precision", prec.String(),
		"gemm_kernel", kernel, "cpu_features", cpu.Summary(),
		"replicas", *replicas, "cache_bytes", *cacheBytes, "log_format", *logFormat)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "err", err.Error())
		os.Exit(1)
	}
	<-shutdownDone
}

// newLogger builds the process logger for -log-format. Both handlers write
// to stderr so stdout stays clean for tooling.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text | json)", format)
	}
}
