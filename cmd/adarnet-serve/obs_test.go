package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adarnet/internal/obs"
)

// TestRequestIDInLogAndRing is the observability integration test: one
// request through the full middleware + handler stack must carry the same
// request ID in the X-Request-Id response header, the structured access-log
// line, and the trace ring.
func TestRequestIDInLogAndRing(t *testing.T) {
	var logged bytes.Buffer
	cfg := testConfig()
	cfg.logger = slog.New(slog.NewJSONHandler(&logged, nil))
	cfg.ring = obs.NewTraceRing(8)
	mux := newMux(&stubPredictor{inf: stubInference()}, cfg)

	rec := postPredict(mux, `{"case":"channel"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %q", rec.Code, rec.Body)
	}
	id := rec.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("response missing X-Request-Id")
	}

	// The access-log line carries the same ID, as structured JSON.
	var line struct {
		Msg       string  `json:"msg"`
		RequestID string  `json:"request_id"`
		Route     string  `json:"route"`
		Status    int     `json:"status"`
		ElapsedMs float64 `json:"elapsed_ms"`
	}
	if err := json.Unmarshal(logged.Bytes(), &line); err != nil {
		t.Fatalf("access log is not one JSON line: %v (%q)", err, logged.String())
	}
	if line.Msg != "request" || line.RequestID != id || line.Route != "/predict" || line.Status != 200 {
		t.Errorf("access log = %+v, want msg=request request_id=%s route=/predict status=200", line, id)
	}

	// The trace ring retains the same request under the same ID.
	entries := cfg.ring.Snapshot()
	if len(entries) != 1 {
		t.Fatalf("ring has %d entries, want 1", len(entries))
	}
	if e := entries[0]; e.ID != id || e.Route != "/predict" || e.Status != 200 {
		t.Errorf("ring entry = %+v, want id=%s route=/predict status=200", e, id)
	}
}

// TestClientRequestIDAdopted checks that a well-formed client X-Request-Id
// is adopted end to end, and a hostile one is replaced.
func TestClientRequestIDAdopted(t *testing.T) {
	var logged bytes.Buffer
	cfg := testConfig()
	cfg.logger = slog.New(slog.NewTextHandler(&logged, nil))
	cfg.ring = obs.NewTraceRing(8)
	mux := newMux(&stubPredictor{inf: stubInference()}, cfg)

	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{}`))
	req.Header.Set("X-Request-Id", "client-abc.123")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "client-abc.123" {
		t.Errorf("well-formed client ID not adopted: header = %q", got)
	}
	if entries := cfg.ring.Snapshot(); len(entries) != 1 || entries[0].ID != "client-abc.123" {
		t.Errorf("ring did not record the adopted ID: %+v", entries)
	}
	if !strings.Contains(logged.String(), "request_id=client-abc.123") {
		t.Errorf("access log missing adopted ID: %q", logged.String())
	}

	req = httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{}`))
	req.Header.Set("X-Request-Id", "evil\nid=injected")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got == "" || strings.Contains(got, "\n") {
		t.Errorf("hostile ID not replaced: header = %q", got)
	}
}

// TestQuietRoutes checks that /healthz and /metrics stay out of the access
// log and the trace ring (probe and scrape noise) while /stats is traced.
func TestQuietRoutes(t *testing.T) {
	var logged bytes.Buffer
	cfg := testConfig()
	cfg.logger = slog.New(slog.NewTextHandler(&logged, nil))
	cfg.ring = obs.NewTraceRing(8)
	mux := newMux(&stubPredictor{inf: stubInference()}, cfg)

	for _, path := range []string{"/healthz", "/metrics", "/stats"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: status = %d", path, rec.Code)
		}
	}
	if cfg.ring.Len() != 1 {
		t.Errorf("ring has %d entries, want only /stats", cfg.ring.Len())
	}
	if log := logged.String(); strings.Contains(log, "/healthz") || strings.Contains(log, "route=/metrics") {
		t.Errorf("quiet routes leaked into the access log: %q", log)
	}
}

// TestMetricsEndpointServesEngineStats checks the /metrics route on the
// serving mux renders valid Prometheus text including the process metrics.
func TestMetricsEndpointServesEngineStats(t *testing.T) {
	mux := newMux(&stubPredictor{inf: stubInference()}, testConfig())
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE adarnet_http_requests_total counter",
		"# TYPE adarnet_http_request_seconds histogram",
		`adarnet_http_request_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHandlerPanicLoggedWithRequestID checks the last line of defense: a
// panic escaping a handler is answered with a 500 carrying the request ID
// header, and logged at ERROR with the same ID and a stack.
func TestHandlerPanicLoggedWithRequestID(t *testing.T) {
	var logged bytes.Buffer
	cfg := testConfig()
	cfg.logger = slog.New(slog.NewTextHandler(&logged, nil))
	cfg.ring = obs.NewTraceRing(8)

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	h := withObs(inner, cfg)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{}`)))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	id := rec.Header().Get("X-Request-Id")
	log := logged.String()
	if !strings.Contains(log, "handler exploded") || !strings.Contains(log, "level=ERROR") {
		t.Errorf("panic not logged at ERROR: %q", log)
	}
	if id == "" || !strings.Contains(log, id) {
		t.Errorf("panic log missing request ID %q: %q", id, log)
	}
	if entries := cfg.ring.Snapshot(); len(entries) != 1 || entries[0].Status != 500 {
		t.Errorf("panicked request not traced as 500: %+v", entries)
	}
}
