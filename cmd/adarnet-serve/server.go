package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"adarnet/internal/core"
	"adarnet/internal/geometry"
	"adarnet/internal/serve"
)

// predictor is the slice of *serve.Engine the HTTP layer uses; tests stub it
// to exercise request validation and error mapping without a trained model.
type predictor interface {
	Predict(ctx context.Context, c *geometry.Case) (*core.Inference, error)
	Stats() serve.EngineStats
}

// serverConfig bounds what a request may cost before it reaches the engine.
// Every limit exists to convert a hostile or buggy input into a 4xx instead
// of an allocation, a stuck handler, or a worker panic.
type serverConfig struct {
	maxDim         int           // largest accepted grid H or W
	patchTile      int           // H and W must tile by the model's patch size
	maxBody        int64         // request-body byte cap
	requestTimeout time.Duration // per-request deadline (0 = client's only)
	logf           func(format string, args ...any)
}

type predictRequest struct {
	// Pointer fields distinguish "omitted → default" from an explicit
	// value, so explicit zero or negative dimensions are rejected instead
	// of silently replaced.
	Case string   `json:"case"` // channel | flatplate | cylinder | naca0012 | naca1412
	Re   *float64 `json:"re"`
	H    *int     `json:"h"`
	W    *int     `json:"w"`
}

type predictResponse struct {
	Case           string  `json:"case"`
	Levels         [][]int `json:"levels"` // refinement level per patch tile
	CompositeCells int     `json:"composite_cells"`
	UniformCells   int     `json:"uniform_cells"`
	ElapsedMs      float64 `json:"elapsed_ms"`
}

// buildCase validates the request against cfg's bounds and constructs the
// geometry. Every rejection is a client error (HTTP 400).
func buildCase(r predictRequest, cfg serverConfig) (*geometry.Case, error) {
	h, w, re := 16, 64, 2.5e3
	if r.H != nil {
		h = *r.H
	}
	if r.W != nil {
		w = *r.W
	}
	if r.Re != nil {
		re = *r.Re
	}
	for _, d := range [2]struct {
		name string
		v    int
	}{{"h", h}, {"w", w}} {
		if d.v < 1 || d.v > cfg.maxDim {
			return nil, fmt.Errorf("%s=%d out of range [1, %d]", d.name, d.v, cfg.maxDim)
		}
		if cfg.patchTile > 0 && d.v%cfg.patchTile != 0 {
			return nil, fmt.Errorf("%s=%d not a multiple of the model's patch size %d", d.name, d.v, cfg.patchTile)
		}
	}
	if math.IsNaN(re) || math.IsInf(re, 0) || re <= 0 || re > 1e9 {
		return nil, fmt.Errorf("re=%v out of range (0, 1e9]", re)
	}
	switch r.Case {
	case "channel", "":
		return geometry.ChannelCase(re, h, w), nil
	case "flatplate":
		return geometry.FlatPlateCase(re, h, w), nil
	case "cylinder":
		return geometry.CylinderCase(re, h, w), nil
	case "naca0012":
		return geometry.AirfoilCase("0012", re, h, w), nil
	case "naca1412":
		return geometry.AirfoilCase("1412", re, h, w), nil
	default:
		return nil, fmt.Errorf("unknown case %q", r.Case)
	}
}

// newMux wires the HTTP endpoints around a predictor. Handlers never trust
// the request: bodies are size-capped, unknown fields and out-of-bounds
// dimensions are 400s, methods are restricted, and an engine-internal panic
// (serve.ErrInternal) maps to a 500 whose detail stays in the server log —
// the listener itself is never at risk.
func newMux(p predictor, cfg serverConfig) *http.ServeMux {
	if cfg.logf == nil {
		cfg.logf = func(string, ...any) {}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(p.Stats()); err != nil {
			cfg.logf("stats: encode: %v", err)
		}
	})
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, cfg.maxBody)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		var req predictRequest
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("request body exceeds %d bytes", cfg.maxBody), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		c, err := buildCase(req, cfg)
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}

		ctx := r.Context()
		if cfg.requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, cfg.requestTimeout)
			defer cancel()
		}
		start := time.Now()
		inf, err := p.Predict(ctx, c)
		switch {
		case err == nil:
		case errors.Is(err, serve.ErrQueueFull):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case errors.Is(err, serve.ErrEngineClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			http.Error(w, err.Error(), http.StatusRequestTimeout)
			return
		case errors.Is(err, serve.ErrInternal):
			// The contained panic: full detail (value + stack) goes to the
			// log; the client gets a clean 500 and the listener lives on.
			var pe *serve.PanicError
			if errors.As(err, &pe) {
				cfg.logf("predict %s: contained panic: %v\n%s", c.Name, pe.Value, pe.Stack)
			} else {
				cfg.logf("predict %s: %v", c.Name, err)
			}
			http.Error(w, "internal error", http.StatusInternalServerError)
			return
		default:
			cfg.logf("predict %s: %v", c.Name, err)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		levels := make([][]int, inf.Levels.NPy)
		for py := range levels {
			row := make([]int, inf.Levels.NPx)
			for px := range row {
				row[px] = inf.Levels.At(py, px)
			}
			levels[py] = row
		}
		w.Header().Set("Content-Type", "application/json")
		err = json.NewEncoder(w).Encode(predictResponse{
			Case:           c.Name,
			Levels:         levels,
			CompositeCells: inf.CompositeCells,
			UniformCells:   inf.Levels.UniformCells(),
			ElapsedMs:      float64(time.Since(start).Microseconds()) / 1000,
		})
		if err != nil {
			cfg.logf("predict %s: encode: %v", c.Name, err)
		}
	})
	return mux
}
