package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"time"

	"adarnet/internal/core"
	"adarnet/internal/geometry"
	"adarnet/internal/jobs"
	"adarnet/internal/obs"
	"adarnet/internal/serve"
)

// predictor is the slice of serve.Predictor the HTTP layer uses — Engine and
// Cluster both satisfy it; tests stub it to exercise request validation and
// error mapping without a trained model.
type predictor interface {
	Predict(ctx context.Context, c *geometry.Case) (*core.Inference, error)
	Stats() serve.EngineStats
	Health() serve.Health
}

// The HTTP layer's contract is a subset of serve.Predictor, so any serving
// shape plugs in unchanged.
var _ predictor = (serve.Predictor)(nil)

// HTTP-boundary metrics, registered once on the process registry: every
// request through the middleware lands in the latency histogram, and 5xx
// responses get their own counter so an alert needs no log parsing.
var (
	httpRequests = obs.Default.Counter("adarnet_http_requests_total",
		"HTTP requests served (all routes through the access middleware).")
	httpServerErrors = obs.Default.Counter("adarnet_http_responses_5xx_total",
		"HTTP responses with a 5xx status.")
	httpLatency = obs.Default.Histogram("adarnet_http_request_seconds",
		"End-to-end HTTP request latency, including decode and encode.", 1e-9)
)

// serverConfig bounds what a request may cost before it reaches the engine.
// Every limit exists to convert a hostile or buggy input into a 4xx instead
// of an allocation, a stuck handler, or a worker panic.
type serverConfig struct {
	maxDim         int            // largest accepted grid H or W
	patchTile      int            // H and W must tile by the model's patch size
	maxBody        int64          // request-body byte cap
	requestTimeout time.Duration  // per-request deadline (0 = client's only)
	logger         *slog.Logger   // structured access + error log (nil: silent)
	ring           *obs.TraceRing // last-N completed requests (nil: no request ring)
	tracer         *obs.Tracer    // span tracer (nil: no span tracing)
	jobs           *jobs.Service  // async E2E job service (nil: /jobs not served)
}

// validateTimeouts rejects a server configuration whose connection write
// deadline would fire before the per-request deadline: the handler's own
// timeout (a clean 408) must always win over the TCP-level cutoff (an
// aborted connection the client cannot distinguish from a crash).
func validateTimeouts(writeTimeout, requestTimeout time.Duration) error {
	if writeTimeout > 0 && requestTimeout > 0 && writeTimeout <= requestTimeout {
		return fmt.Errorf("-write-timeout (%v) must exceed -request-timeout (%v)", writeTimeout, requestTimeout)
	}
	return nil
}

type predictRequest struct {
	// Pointer fields distinguish "omitted → default" from an explicit
	// value, so explicit zero or negative dimensions are rejected instead
	// of silently replaced.
	Case string   `json:"case"` // channel | flatplate | cylinder | naca0012 | naca1412
	Re   *float64 `json:"re"`
	H    *int     `json:"h"`
	W    *int     `json:"w"`
}

type predictResponse struct {
	Case           string  `json:"case"`
	Levels         [][]int `json:"levels"` // refinement level per patch tile
	CompositeCells int     `json:"composite_cells"`
	UniformCells   int     `json:"uniform_cells"`
	ElapsedMs      float64 `json:"elapsed_ms"`
}

// buildCase validates the request against cfg's bounds and constructs the
// geometry. Every rejection is a client error (HTTP 400).
func buildCase(r predictRequest, cfg serverConfig) (*geometry.Case, error) {
	h, w, re := 16, 64, 2.5e3
	if r.H != nil {
		h = *r.H
	}
	if r.W != nil {
		w = *r.W
	}
	if r.Re != nil {
		re = *r.Re
	}
	for _, d := range [2]struct {
		name string
		v    int
	}{{"h", h}, {"w", w}} {
		if d.v < 1 || d.v > cfg.maxDim {
			return nil, fmt.Errorf("%s=%d out of range [1, %d]", d.name, d.v, cfg.maxDim)
		}
		if cfg.patchTile > 0 && d.v%cfg.patchTile != 0 {
			return nil, fmt.Errorf("%s=%d not a multiple of the model's patch size %d", d.name, d.v, cfg.patchTile)
		}
	}
	if math.IsNaN(re) || math.IsInf(re, 0) || re <= 0 || re > 1e9 {
		return nil, fmt.Errorf("re=%v out of range (0, 1e9]", re)
	}
	switch r.Case {
	case "channel", "":
		return geometry.ChannelCase(re, h, w), nil
	case "flatplate":
		return geometry.FlatPlateCase(re, h, w), nil
	case "cylinder":
		return geometry.CylinderCase(re, h, w), nil
	case "naca0012":
		return geometry.AirfoilCase("0012", re, h, w), nil
	case "naca1412":
		return geometry.AirfoilCase("1412", re, h, w), nil
	default:
		return nil, fmt.Errorf("unknown case %q", r.Case)
	}
}

// statusWriter captures the response status for the access log, the trace
// ring, and the 5xx counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach through to the underlying
// writer, so the SSE handler can flush and extend write deadlines.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// validRequestID reports whether a client-supplied X-Request-Id is safe to
// adopt: short and plain so it cannot smuggle log-injection payloads.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// withObs is the per-request observability middleware: it assigns (or
// adopts) a request ID, propagates it via context to every layer below —
// handler logs, engine panic logs, error paths — echoes it in the
// X-Request-Id response header, captures the status, and on completion
// emits one structured access-log line, appends to the trace ring, and
// records the HTTP latency histogram. A panic escaping a handler is logged
// at ERROR with the request ID and a truncated stack, answered with a clean
// 500, and does not take down the listener. /healthz and /metrics are
// exempt from the access log, the ring, and span tracing (probe and scrape
// noise), but panics there are still contained.
//
// With a tracer configured, each non-quiet request becomes the root span of
// a trace: an incoming W3C traceparent header is adopted (malformed or
// absent values silently start a fresh trace — trace context is telemetry,
// never a reason to reject a request), the serving layers below hang their
// stage spans off it via context, and the outgoing trace context is echoed
// in the traceparent response header so the caller can correlate.
func withObs(next http.Handler, cfg serverConfig) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}

		quiet := r.URL.Path == "/healthz" || r.URL.Path == "/metrics"
		var span *obs.Span
		var note *obs.RequestNote
		if !quiet {
			ctx, span = cfg.tracer.StartRequest(ctx, r.Method+" "+r.URL.Path, r.Header.Get("traceparent"))
			if tp := span.Traceparent(); tp != "" {
				w.Header().Set("traceparent", tp)
			}
			ctx, note = obs.WithRequestNote(ctx)
		}
		r = r.WithContext(ctx)

		start := time.Now()
		defer func() {
			end := time.Now()
			elapsed := end.Sub(start)
			if rec := recover(); rec != nil {
				buf := make([]byte, 4<<10)
				n := runtime.Stack(buf, false)
				if cfg.logger != nil {
					cfg.logger.Error("handler panic",
						"request_id", id, "trace_id", span.Trace().String(), "route", r.URL.Path,
						"panic", fmt.Sprint(rec), "stack", string(buf[:n]))
				}
				if sw.status == 0 {
					http.Error(sw, "internal error", http.StatusInternalServerError)
				}
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			httpRequests.Inc()
			httpLatency.ObserveDuration(elapsed)
			if sw.status >= 500 {
				httpServerErrors.Inc()
			}
			if quiet {
				return
			}
			span.SetAttrs(obs.Int("status", int64(sw.status)))
			if sw.status >= 500 {
				span.SetError(fmt.Errorf("http status %d", sw.status))
			}
			// Same clock read as the root span's end: the trace duration and
			// the ring entry's Elapsed describe the same interval.
			span.EndAt(end)
			if cfg.logger != nil {
				cfg.logger.Info("request",
					"request_id", id, "trace_id", span.Trace().String(),
					"method", r.Method, "route", r.URL.Path,
					"status", sw.status, "elapsed_ms", float64(elapsed.Microseconds())/1000)
			}
			cfg.ring.Add(obs.TraceEntry{
				ID: id, TraceID: span.Trace().String(), Route: r.URL.Path, Status: sw.status,
				Start: start, Elapsed: elapsed,
				Replica: note.Replica(), CacheHit: note.CacheHit(),
			})
		}()
		next.ServeHTTP(sw, r)
	})
}

// newMux wires the HTTP endpoints around a predictor, wrapped in the
// observability middleware. Handlers never trust the request: bodies are
// size-capped, unknown fields and out-of-bounds dimensions are 400s,
// methods are restricted, and an engine-internal panic (serve.ErrInternal)
// maps to a 500 whose detail stays in the server log — the listener itself
// is never at risk.
func newMux(p predictor, cfg serverConfig) http.Handler {
	logger := cfg.logger
	if logger == nil {
		// Handlers log unconditionally through this discard logger; the
		// middleware checks cfg.logger itself and skips the access log.
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Default.Handler())
	if cfg.jobs != nil {
		registerJobRoutes(mux, cfg.jobs, cfg, logger)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		// Readiness, not just liveness: per-replica detail in the body, 503
		// when zero replicas are routable so load balancers stop sending.
		h := p.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if err := json.NewEncoder(w).Encode(h); err != nil {
			logger.Warn("healthz encode failed", "request_id", obs.RequestIDFrom(r.Context()), "err", err.Error())
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// A cluster reports the full fleet view — aggregate, per-replica
		// snapshots, router counters; an engine reports its EngineStats.
		var body any = p.Stats()
		if cs, ok := p.(interface{ ClusterStats() serve.ClusterStats }); ok {
			body = cs.ClusterStats()
		}
		if err := json.NewEncoder(w).Encode(body); err != nil {
			logger.Warn("stats encode failed", "request_id", obs.RequestIDFrom(r.Context()), "err", err.Error())
		}
	})
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		reqID := obs.RequestIDFrom(r.Context())
		traceID := obs.SpanFromContext(r.Context()).Trace().String()
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, cfg.maxBody)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		var req predictRequest
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("request body exceeds %d bytes", cfg.maxBody), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		c, err := buildCase(req, cfg)
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}

		ctx := r.Context()
		if cfg.requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, cfg.requestTimeout)
			defer cancel()
		}
		start := time.Now()
		inf, err := p.Predict(ctx, c)
		switch {
		case err == nil:
		case errors.Is(err, serve.ErrQueueFull):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case errors.Is(err, serve.ErrEngineClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			http.Error(w, err.Error(), http.StatusRequestTimeout)
			return
		case errors.Is(err, serve.ErrInternal):
			// The contained panic: full detail (value + stack) goes to the
			// log; the client gets a clean 500 and the listener lives on.
			var pe *serve.PanicError
			if errors.As(err, &pe) {
				logger.Error("predict: contained panic",
					"request_id", reqID, "trace_id", traceID, "case", c.Name,
					"panic", fmt.Sprint(pe.Value), "stack", pe.Stack)
			} else {
				logger.Error("predict failed", "request_id", reqID, "trace_id", traceID, "case", c.Name, "err", err.Error())
			}
			http.Error(w, "internal error", http.StatusInternalServerError)
			return
		default:
			logger.Error("predict failed", "request_id", reqID, "trace_id", traceID, "case", c.Name, "err", err.Error())
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		levels := make([][]int, inf.Levels.NPy)
		for py := range levels {
			row := make([]int, inf.Levels.NPx)
			for px := range row {
				row[px] = inf.Levels.At(py, px)
			}
			levels[py] = row
		}
		w.Header().Set("Content-Type", "application/json")
		err = json.NewEncoder(w).Encode(predictResponse{
			Case:           c.Name,
			Levels:         levels,
			CompositeCells: inf.CompositeCells,
			UniformCells:   inf.Levels.UniformCells(),
			ElapsedMs:      float64(time.Since(start).Microseconds()) / 1000,
		})
		if err != nil {
			logger.Warn("predict encode failed", "request_id", reqID, "trace_id", traceID, "case", c.Name, "err", err.Error())
		}
	})
	return withObs(mux, cfg)
}
