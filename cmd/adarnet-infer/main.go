// Command adarnet-infer runs ADARNet's one-shot non-uniform super-resolution
// on a canonical test case: it solves the LR field, infers the refinement
// map and HR prediction, optionally drives it to convergence with the
// physics solver, and prints the refinement map and cost breakdown.
//
// Usage:
//
//	adarnet-infer -model model.gob -case cylinder -re 1e5 -h 16 -w 64
//	adarnet-infer -case channel -re 2.5e3 -converge
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"adarnet/internal/core"
	"adarnet/internal/geometry"
	"adarnet/internal/grid"
	"adarnet/internal/solver"
	"adarnet/internal/tensor"
)

func main() {
	model := flag.String("model", "", "checkpoint path (empty: untrained weights)")
	caseName := flag.String("case", "channel", "case: channel | flatplate | cylinder | naca0012 | naca1412")
	re := flag.Float64("re", 2.5e3, "Reynolds number")
	h := flag.Int("h", 16, "LR grid height")
	w := flag.Int("w", 64, "LR grid width")
	patch := flag.Int("patch", 4, "patch size")
	converge := flag.Bool("converge", false, "drive the inference to convergence with the physics solver")
	flag.Parse()

	var c *geometry.Case
	switch *caseName {
	case "channel":
		c = geometry.ChannelCase(*re, *h, *w)
	case "flatplate":
		c = geometry.FlatPlateCase(*re, *h, *w)
	case "cylinder":
		c = geometry.CylinderCase(*re, *h, *w)
	case "naca0012":
		c = geometry.AirfoilCase("0012", *re, *h, *w)
	case "naca1412":
		c = geometry.AirfoilCase("1412", *re, *h, *w)
	default:
		fmt.Fprintf(os.Stderr, "unknown case %q\n", *caseName)
		os.Exit(2)
	}

	m := core.New(core.DefaultConfig(*patch, *patch))
	if *model != "" {
		if err := m.Load(*model); err != nil {
			fmt.Fprintln(os.Stderr, "adarnet-infer:", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("solving LR field for %s...\n", c.Name)
	lr := c.Build()
	opt := solver.DefaultOptions()
	t0 := time.Now()
	lrRes, err := solver.Solve(ctx, lr, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adarnet-infer:", err)
		os.Exit(1)
	}
	fmt.Printf("LR solve: %v (%v)\n", lrRes, time.Since(t0).Round(time.Millisecond))

	if *model == "" {
		// Without a checkpoint, fit normalization to this field so the
		// untrained demo still produces sane numbers.
		m.Norm = core.FitNorm([]*tensor.Tensor{grid.ToTensor(lr)})
	}
	inf := m.Infer(lr)
	fmt.Printf("inference: %v, %d composite cells (uniform would be %d), %.1f MB activations\n",
		inf.Elapsed.Round(time.Microsecond), inf.CompositeCells, inf.Levels.UniformCells(),
		float64(inf.MemoryBytes)/(1<<20))
	fmt.Printf("refinement map:\n%s", inf.Levels.Render())

	if *converge {
		fine := inf.ToFlow(lr, c.BuildAt)
		t1 := time.Now()
		psRes, err := solver.Solve(ctx, fine, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adarnet-infer:", err)
			os.Exit(1)
		}
		fmt.Printf("physics-solver correction: %v (%v)\n", psRes, time.Since(t1).Round(time.Millisecond))
	}
}
