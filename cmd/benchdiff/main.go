// Command benchdiff compares two machine-readable benchmark files
// (BENCH_*.json, as written by adarnet-bench -json-dir) and reports the
// relative change of every shared numeric metric. With -metric it becomes a
// CI gate: the process exits non-zero when the named metric regressed by
// more than -max-regress percent.
//
// Metrics are addressed by their flattened JSON path: object keys join with
// '.', array elements by index — e.g. engine_b8_rps, batches.1.speedup,
// stages.3.p99_ms. Higher values count as better by default; pass
// -lower-better for latency-style metrics.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -metric engine_b8_rps -max-regress 10 old.json new.json
//	benchdiff -metric stages.3.p99_ms -lower-better -max-regress 25 old.json new.json
//
// Exit status: 0 on success, 1 on regression (or a -metric missing from
// either file), 2 on usage or read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
)

func main() {
	metric := flag.String("metric", "", "flattened metric path to gate on; empty only prints the diff table")
	maxRegress := flag.Float64("max-regress", 5, "largest tolerated regression of -metric, in percent")
	lowerBetter := flag.Bool("lower-better", false, "treat a decrease of -metric as an improvement (latency-style metrics)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-metric path] [-max-regress pct] [-lower-better] old.json new.json")
		os.Exit(2)
	}

	old, err := loadMetrics(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	new_, err := loadMetrics(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	keys := sharedKeys(old, new_)
	fmt.Printf("%-36s %16s %16s %10s\n", "metric", "old", "new", "delta")
	for _, k := range keys {
		fmt.Printf("%-36s %16.4g %16.4g %9.2f%%\n", k, old[k], new_[k], deltaPct(old[k], new_[k]))
	}

	if *metric == "" {
		return
	}
	ov, ook := old[*metric]
	nv, nok := new_[*metric]
	if !ook || !nok {
		fmt.Fprintf(os.Stderr, "benchdiff: metric %q missing (old: %v, new: %v); available: %v\n", *metric, ook, nok, keys)
		os.Exit(1)
	}
	reg := regressionPct(ov, nv, *lowerBetter)
	if reg > *maxRegress {
		fmt.Fprintf(os.Stderr, "benchdiff: %s regressed %.2f%% (old %.6g, new %.6g, limit %.2f%%)\n",
			*metric, reg, ov, nv, *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("%s: %.6g -> %.6g (regression %.2f%%, limit %.2f%%) OK\n", *metric, ov, nv, reg, *maxRegress)
}

// loadMetrics reads a JSON file and flattens every numeric leaf into a
// dotted-path map.
func loadMetrics(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v interface{}
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := map[string]float64{}
	flatten("", v, m)
	return m, nil
}

// flatten walks a decoded JSON value, collecting numeric leaves under
// dot-joined paths; array elements use their index as the path segment.
func flatten(prefix string, v interface{}, out map[string]float64) {
	switch t := v.(type) {
	case map[string]interface{}:
		for k, child := range t {
			flatten(join(prefix, k), child, out)
		}
	case []interface{}:
		for i, child := range t {
			flatten(join(prefix, strconv.Itoa(i)), child, out)
		}
	case float64:
		out[prefix] = t
	}
}

func join(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}

// sharedKeys returns the sorted metric paths present in both files.
func sharedKeys(a, b map[string]float64) []string {
	var keys []string
	for k := range a {
		if _, ok := b[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// deltaPct is the signed relative change new vs old, in percent.
func deltaPct(old, new_ float64) float64 {
	if old == 0 {
		if new_ == 0 {
			return 0
		}
		return math.Inf(sign(new_))
	}
	return 100 * (new_ - old) / math.Abs(old)
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// regressionPct converts the delta into "percent worse": positive when the
// metric moved in the bad direction, negative (an improvement) otherwise.
func regressionPct(old, new_ float64, lowerBetter bool) float64 {
	d := deltaPct(old, new_)
	if lowerBetter {
		return d
	}
	return -d
}
