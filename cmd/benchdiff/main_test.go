package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestFlattenNestedMetrics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	body := `{
		"engine_b8_rps": 120.5,
		"batches": [
			{"batch": 1, "speedup": 1.02},
			{"batch": 8, "speedup": 1.78}
		],
		"label": "quick",
		"nested": {"p99_ms": 4.25}
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadMetrics(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"engine_b8_rps":     120.5,
		"batches.0.batch":   1,
		"batches.0.speedup": 1.02,
		"batches.1.batch":   8,
		"batches.1.speedup": 1.78,
		"nested.p99_ms":     4.25,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("flattened metrics = %v, want %v", got, want)
	}
}

func TestSharedKeysSorted(t *testing.T) {
	a := map[string]float64{"b": 1, "a": 2, "only_a": 3}
	b := map[string]float64{"a": 1, "b": 2, "only_b": 3}
	got := sharedKeys(a, b)
	want := []string{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharedKeys = %v, want %v", got, want)
	}
}

func TestRegressionPct(t *testing.T) {
	cases := []struct {
		name        string
		old, new_   float64
		lowerBetter bool
		want        float64
	}{
		{"throughput drop is a regression", 100, 90, false, 10},
		{"throughput gain is negative regression", 100, 120, false, -20},
		{"latency rise is a regression", 10, 12, true, 20},
		{"latency drop is an improvement", 10, 8, true, -20},
		{"unchanged", 5, 5, false, 0},
	}
	for _, c := range cases {
		if got := regressionPct(c.old, c.new_, c.lowerBetter); got != c.want {
			t.Errorf("%s: regressionPct(%v, %v, %v) = %v, want %v",
				c.name, c.old, c.new_, c.lowerBetter, got, c.want)
		}
	}
}

func TestLoadMetricsErrors(t *testing.T) {
	if _, err := loadMetrics(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadMetrics(bad); err == nil {
		t.Fatal("malformed json: want error")
	}
}
