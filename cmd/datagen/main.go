// Command datagen generates an LR training corpus by running the RANS-SA
// solver over the paper's training sweeps (channel, flat plate, ellipses)
// and writes it as a gob file consumable by adarnet-train.
//
// Usage:
//
//	datagen -per-family 10 -h 16 -w 64 -out corpus.gob
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"adarnet/internal/dataset"
)

func main() {
	perFamily := flag.Int("per-family", 4, "samples per canonical flow family")
	h := flag.Int("h", 16, "LR grid height (cells)")
	w := flag.Int("w", 64, "LR grid width (cells)")
	maxIter := flag.Int("max-iter", 8000, "solver iteration cap per sample")
	out := flag.String("out", "corpus.gob", "output path")
	flag.Parse()

	opt := dataset.DefaultOptions(*perFamily, *h, *w)
	opt.Solver.MaxIter = *maxIter
	opt.Progress = func(done, total int, name string) {
		fmt.Printf("[%d/%d] %s\n", done, total, name)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	samples, err := dataset.Generate(ctx, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := dataset.SaveFile(*out, samples); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d samples to %s\n", len(samples), *out)
}
